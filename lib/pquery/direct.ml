module Xml = Imprecise_xml
module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Ast = Imprecise_xpath.Ast
module Eval = Imprecise_xpath.Eval

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* ---- query decomposition ------------------------------------------------ *)

(* A predicate may not depend on anything outside the binder's subtree:
   reject positional predicates and absolute paths syntactically. *)
let rec expr_is_local (e : Ast.expr) =
  match e with
  | Ast.Literal _ | Ast.Number _ | Ast.Var _ -> true
  | Ast.Path { absolute; steps } ->
      (not absolute) && List.for_all (fun (_, s) -> step_is_local s) steps
  | Ast.Filter (p, preds, steps) ->
      expr_is_local p
      && List.for_all expr_is_local preds
      && List.for_all (fun (_, s) -> step_is_local s) steps
  | Ast.Binop (_, a, b) -> expr_is_local a && expr_is_local b
  | Ast.Neg a -> expr_is_local a
  | Ast.Union (a, b) -> expr_is_local a && expr_is_local b
  | Ast.Call (("position" | "last"), _) -> false
  | Ast.Call (_, args) -> List.for_all expr_is_local args
  | Ast.Quantified (_, _, dom, cond) -> expr_is_local dom && expr_is_local cond
  | Ast.For (_, dom, where, body) ->
      expr_is_local dom
      && (match where with None -> true | Some w -> expr_is_local w)
      && expr_is_local body
  | Ast.Let (_, value, body) -> expr_is_local value && expr_is_local body
  | Ast.If (c, t, e) -> expr_is_local c && expr_is_local t && expr_is_local e
  | Ast.Element_ctor (_, content) -> List.for_all expr_is_local content
  | Ast.Text_ctor e -> expr_is_local e

and step_is_local (s : Ast.step) =
  (match s.Ast.axis with
  | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Following_sibling
  | Ast.Preceding_sibling ->
      false (* may escape the binder's subtree *)
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Self | Ast.Attribute -> true)
  && List.for_all pred_is_local s.Ast.predicates

and pred_is_local p =
  match p with
  | Ast.Number _ -> false (* positional *)
  | e -> expr_is_local e

type plan = {
  prefix : (bool * Ast.node_test) list;
      (** structural steps before the binder; bool = descendant separator *)
  binder : bool * Ast.node_test;  (** the binder step's separator and test *)
  local : Ast.expr;  (** evaluated inside each occurrence's local worlds *)
}

let plan_of_expr (e : Ast.expr) : plan =
  match e with
  | Ast.Path { absolute = true; steps = (_ :: _ as steps) } ->
      let with_preds i (_, s) = if s.Ast.predicates <> [] then Some i else None in
      let binder_idx =
        match List.filteri (fun i s -> with_preds i s <> None) steps with
        | [] -> List.length steps - 1
        | _ ->
            let rec first i = function
              | [] -> assert false
              | (_, s) :: rest -> if s.Ast.predicates <> [] then i else first (i + 1) rest
            in
            first 0 steps
      in
      let prefix_steps = List.filteri (fun i _ -> i < binder_idx) steps in
      let binder_sep, binder_step = List.nth steps binder_idx in
      let rest = List.filteri (fun i _ -> i > binder_idx) steps in
      let prefix =
        List.map
          (fun (sep, s) ->
            if s.Ast.axis <> Ast.Child then
              unsupported "non-child axis before the binder step";
            if s.Ast.predicates <> [] then unsupported "predicate before the binder step";
            (match s.Ast.test with
            | Ast.Name _ | Ast.Wildcard -> ()
            | _ -> unsupported "text()/node() test before the binder step");
            (sep, s.Ast.test))
          prefix_steps
      in
      if binder_step.Ast.axis <> Ast.Child then unsupported "binder step must use the child axis";
      (match binder_step.Ast.test with
      | Ast.Name _ | Ast.Wildcard -> ()
      | _ -> unsupported "binder step must test an element name");
      List.iter
        (fun p -> if not (pred_is_local p) then unsupported "non-local predicate")
        binder_step.Ast.predicates;
      List.iter
        (fun (_, s) -> if not (step_is_local s) then unsupported "non-local value step")
        rest;
      let local =
        Ast.Path
          {
            absolute = false;
            steps =
              ( false,
                {
                  Ast.axis = Ast.Self;
                  test = Ast.Any_node;
                  predicates = binder_step.Ast.predicates;
                } )
              :: rest;
          }
      in
      { prefix; binder = (binder_sep, binder_step.Ast.test); local }
  | _ -> unsupported "query must be an absolute location path"

let supported e =
  match plan_of_expr e with _ -> true | exception Unsupported _ -> false

(* ---- step automaton over the skeleton ----------------------------------- *)

(* State k means: prefix steps 0..k-1 are matched along the element chain;
   state [n_prefix] means the next matching element is an occurrence. *)
let test_matches test tag =
  match test with
  | Ast.Name n -> String.equal n tag
  | Ast.Wildcard -> true
  | Ast.Text_node | Ast.Any_node -> false

(* ---- emission trees ------------------------------------------------------ *)

type etree =
  | Edist of (float * etree list) list
  | Eelem of etree list
  | Eoccur of (string * float) list  (** local value distribution *)

(* Physical-identity memo table for shared subtrees: integration shares
   merged/embedded subtrees across possibilities, so the expensive local
   enumeration runs once per distinct subtree. Buckets by (depth-bounded)
   structural hash, compares physically within a bucket. *)
module Phys = struct
  type 'v t = (int, (Pxml.node * 'v) list ref) Hashtbl.t

  let table () : 'v t = Hashtbl.create 256

  let find (tbl : 'v t) (k : Pxml.node) : 'v option =
    match Hashtbl.find_opt tbl (Hashtbl.hash k) with
    | None -> None
    | Some bucket -> (
        match List.find_opt (fun (k', _) -> k' == k) !bucket with
        | Some (_, v) -> Some v
        | None -> None)

  let add (tbl : 'v t) (k : Pxml.node) (v : 'v) =
    let h = Hashtbl.hash k in
    match Hashtbl.find_opt tbl h with
    | None -> Hashtbl.add tbl h (ref [ (k, v) ])
    | Some bucket -> bucket := (k, v) :: !bucket
end

let local_distribution ~local_limit local_expr (node : Pxml.node) : (string * float) list =
  let count =
    (* world count of a single node *)
    Pxml.world_count { Pxml.choices = [ { Pxml.prob = 1.; nodes = [ node ] } ] }
  in
  if count > local_limit then
    unsupported "occurrence subtree has %g local worlds (limit %g)" count local_limit;
  let tbl = Hashtbl.create 8 in
  Seq.iter
    (fun (q, tree) ->
      let root = Eval.root_node tree in
      let values =
        match Eval.eval_at ~root root local_expr with
        | Eval.Nodeset items -> List.sort_uniq String.compare (List.map Eval.string_of_item items)
        | v -> [ Eval.string_value v ]
      in
      List.iter
        (fun v ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt tbl v) in
          Hashtbl.replace tbl v (prev +. q))
        values)
    (Worlds.enumerate_node node);
  Hashtbl.fold (fun v p acc -> (v, p) :: acc) tbl []

let build_etree ~local_limit (plan : plan) (doc : Pxml.doc) : etree =
  let n_prefix = List.length plan.prefix in
  let occ_memo = Phys.table () in
  let steps = Array.of_list (plan.prefix @ [ plan.binder ]) in
  (* Advance the automaton over an element with tag [tag]: returns the new
     state set and whether this element is an occurrence. *)
  let advance states tag =
    let next = Hashtbl.create 4 in
    let occurrence = ref false in
    List.iter
      (fun k ->
        let sep, test = steps.(k) in
        if test_matches test tag then begin
          if k = n_prefix then occurrence := true
          else Hashtbl.replace next (k + 1) ()
        end;
        if sep then Hashtbl.replace next k ())
      states;
    (Hashtbl.fold (fun k () acc -> k :: acc) next [], !occurrence)
  in
  let rec walk_dist states inside (d : Pxml.dist) : etree =
    Edist
      (List.map
         (fun (c : Pxml.choice) ->
           (c.Pxml.prob, List.filter_map (walk_node states inside) c.Pxml.nodes))
         d.Pxml.choices)
  and walk_node states inside (n : Pxml.node) : etree option =
    match n with
    | Pxml.Text _ -> None
    | Pxml.Elem (tag, _, content) ->
        let states', occurrence = advance states tag in
        if occurrence then begin
          if inside then unsupported "nested occurrences of the binder element";
          (* Check for nested occurrences below, then summarise locally. *)
          List.iter (fun d -> ignore (walk_dist states' true d)) content;
          let dist =
            match Phys.find occ_memo n with
            | Some d -> d
            | None ->
                let d = local_distribution ~local_limit plan.local n in
                Phys.add occ_memo n d;
                d
          in
          Some (Eoccur dist)
        end
        else if states' = [] then None
        else Some (Eelem (List.map (walk_dist states' inside) content))
  in
  (* The initial state set: state 0 (about to match the first step). *)
  walk_dist [ 0 ] false doc

module SS = Set.Make (String)

let values_of_etree t =
  let rec go acc = function
    | Eoccur dist -> List.fold_left (fun acc (v, _) -> SS.add v acc) acc dist
    | Eelem ts -> List.fold_left go acc ts
    | Edist cs -> List.fold_left (fun acc (_, ts) -> List.fold_left go acc ts) acc cs
  in
  SS.elements (go SS.empty t)

(* P(no occurrence emits v). *)
let rec noemit v = function
  | Eoccur dist -> 1. -. Option.value ~default:0. (List.assoc_opt v dist)
  | Eelem ts -> List.fold_left (fun acc t -> acc *. noemit v t) 1. ts
  | Edist cs ->
      List.fold_left
        (fun acc (p, ts) ->
          acc +. (p *. List.fold_left (fun a t -> a *. noemit v t) 1. ts))
        0. cs

let rank_expr ?(local_limit = 4096.) doc expr =
  let plan = plan_of_expr expr in
  let etree = build_etree ~local_limit plan doc in
  let values = values_of_etree etree in
  Answer.rank
    (List.filter_map
       (fun v ->
         let p = 1. -. noemit v etree in
         if p <= 1e-12 then None else Some { Answer.value = v; prob = p })
       values)

let rank ?local_limit doc query =
  rank_expr ?local_limit doc (Imprecise_xpath.Parser.parse_exn query)
