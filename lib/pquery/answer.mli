(** Amalgamated ranked answers (paper §VI).

    Query answers from different possible worlds are merged by value and
    ranked by the probability that the value appears in the answer. *)

type t = { value : string; prob : float }

(** [rank answers] sorts by decreasing probability, breaking ties by
    value. *)
val rank : t list -> t list

(** [of_prob_map assoc] builds ranked answers from [(value, prob)] pairs,
    merging duplicate values by {b summing} (callers must pre-aggregate if
    the events overlap). *)
val of_prob_map : (string * float) list -> t list

(** [pp] prints ["97% Jaws"]-style lines, one per answer. *)
val pp : Format.formatter -> t list -> unit

val equal : ?tolerance:float -> t list -> t list -> bool
