type t = { value : string; prob : float }

let rank answers =
  List.sort
    (fun a b ->
      match Float.compare b.prob a.prob with
      | 0 -> String.compare a.value b.value
      | c -> c)
    answers

let of_prob_map assoc =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (value, prob) ->
      let prev = Option.value ~default:0. (Hashtbl.find_opt tbl value) in
      Hashtbl.replace tbl value (prev +. prob))
    assoc;
  rank (Hashtbl.fold (fun value prob acc -> { value; prob } :: acc) tbl [])

let pp ppf answers =
  List.iter (fun a -> Fmt.pf ppf "%3.0f%% %s@." (100. *. a.prob) a.value) answers

let equal ?(tolerance = 1e-9) a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> String.equal x.value y.value && Float.abs (x.prob -. y.prob) <= tolerance)
       a b
