(** Probabilistic querying front-end.

    [rank] answers a query over a probabilistic document with an
    amalgamated ranked answer (paper §VI): distinct values, each with the
    probability that it belongs to the query answer. It uses the exact
    {!Direct} evaluator whenever the query is in its class and falls back
    to possible-world enumeration ({!Naive}) otherwise. *)

module Pxml = Imprecise_pxml.Pxml

type strategy =
  | Auto  (** direct when possible, else enumeration *)
  | Direct_only
  | Enumerate_only
  | Sample of { n : int; seed : int }
      (** Monte-Carlo estimate: draw [n] worlds from the document's
          distribution and report answer frequencies. Works on documents of
          any size; probabilities carry sampling error O(1/√n). *)

exception Cannot_answer of string
(** The chosen strategy cannot answer this query on this document (e.g.
    enumeration over too many worlds, or [Direct_only] on an unsupported
    query). *)

(** [rank ?strategy ?world_limit doc query] — [world_limit] guards the
    enumeration fallback (default 200_000 choice combinations). *)
val rank : ?strategy:strategy -> ?world_limit:float -> Pxml.doc -> string -> Answer.t list

(** [used_strategy doc query] reports which evaluator {!rank} with [Auto]
    would use ([`Direct] or [`Enumerate]). *)
val used_strategy : Pxml.doc -> string -> [ `Direct | `Enumerate ]

(** {1 Explanations}

    Why does an answer have the probability it has? [explain] classifies
    the [k] most likely worlds (found without enumeration, see
    {!Imprecise_pxml.Worlds.most_likely}) by whether the value is part of
    the query answer there. The probability mass covered by those [k]
    worlds bounds how representative the explanation is. *)

type explanation = {
  prob : float;  (** P(value ∈ answer), from {!rank} with [Auto] *)
  supporting : (float * Imprecise_xml.Tree.t list) list;
      (** most likely worlds in which the value is in the answer *)
  opposing : (float * Imprecise_xml.Tree.t list) list;
      (** most likely worlds in which it is not *)
  covered : float;  (** total probability mass of the worlds examined *)
}

(** [explain ?k doc query value] — [k] (default 10) bounds how many worlds
    are examined. *)
val explain : ?k:int -> Pxml.doc -> string -> string -> explanation
