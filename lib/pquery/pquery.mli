(** Probabilistic querying front-end.

    [rank] answers a query over a probabilistic document with an
    amalgamated ranked answer (paper §VI): distinct values, each with the
    probability that it belongs to the query answer. It uses the exact
    {!Direct} evaluator whenever the query is in its class and falls back
    to possible-world enumeration ({!Naive}) otherwise.

    The enumeration path scales two ways: [jobs] spreads the possible
    worlds over that many OCaml domains, and [top_k] stops enumerating
    early once the leading answers are provably final (see {!Naive.rank}
    for the exact contracts). [rank_cached] adds a process-wide LRU
    answer cache keyed by the owning collection's document generation, so
    repeated queries against an unchanged store are O(1). *)

module Pxml = Imprecise_pxml.Pxml
module Eval = Imprecise_xpath.Eval

type strategy =
  | Auto
      (** consult the static planner ({!plan}): direct when it proves the
          query inside the tractable fragment, else enumeration pre-sized
          from the cost bounds *)
  | Direct_only
  | Enumerate_only
  | Sample of { n : int; seed : int }
      (** Monte-Carlo estimate: draw [n] worlds from the document's
          distribution and report answer frequencies. Works on documents of
          any size; probabilities carry sampling error O(1/√n). *)

exception Cannot_answer of string
(** The chosen strategy cannot answer this query on this document (e.g.
    enumeration over too many worlds, or [Direct_only] on an unsupported
    query). *)

(** [compile query] parses [query] once into a reusable handle; raises
    like {!Imprecise_xpath.Parser.parse_exn} on syntax errors. Use with
    {!rank_compiled} to amortise parsing across documents. *)
val compile : string -> Eval.compiled

(** [rank ?strategy ?world_limit ?jobs ?top_k ?top_k_tolerance doc query]
    — [world_limit] guards the enumeration fallback (default 200_000
    choice combinations). [jobs] (default 1) parallelises enumeration;
    [jobs = 1] is bit-identical to the original sequential evaluation.
    [top_k] keeps only the [k] most likely answers, terminating the
    enumeration early when their order can no longer change and the
    unprocessed mass is at most [top_k_tolerance] (default [1e-9]); under
    [Direct_only]/[Auto]-direct/[Sample] it merely truncates the ranked
    list, which is exact there. Raises {!Cannot_answer} on [top_k <= 0].

    [static_check] (default [true]) runs the static analyzer
    ({!Imprecise_analyze.Query_check.statically_empty}) against the
    document's path summary first; a query that provably selects nothing
    in any possible world returns [[]] without evaluating a single world
    (counter [pquery.static_pruned], span [analyze.check]). Pass [false]
    to force full evaluation — the differential fuzz harness does, to
    check the prune against ground truth rather than against itself.

    [budget] ({!Imprecise_resilience.Budget}) is checked on entry, ticked
    per enumerated world on the enumeration path and per drawn world on
    the sampling path; a trip raises [Budget.Exceeded]. Use
    {!rank_graded} instead to turn budget trips into a degraded answer
    rather than an exception. *)
val rank :
  ?budget:Imprecise_resilience.Budget.t ->
  ?strategy:strategy ->
  ?static_check:bool ->
  ?world_limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  ?top_k_tolerance:float ->
  Pxml.doc ->
  string ->
  Answer.t list

(** [rank_compiled] is {!rank} on a pre-compiled query handle. *)
val rank_compiled :
  ?budget:Imprecise_resilience.Budget.t ->
  ?strategy:strategy ->
  ?static_check:bool ->
  ?world_limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  ?top_k_tolerance:float ->
  Pxml.doc ->
  Eval.compiled ->
  Answer.t list

(** [rank_graded ?budget ?world_limit ?jobs ?top_k doc query] is the
    "good is good enough" entry point: a degradation ladder
    ({!Imprecise_resilience.Degrade}) that always returns an answer,
    tagged with how approximate it is.

    - {b exact} — {!rank} under 60% of [budget]; result grade
      {!Imprecise_resilience.Degrade.Exact}.
    - {b top_k} — enumeration with early termination ([top_k] answers,
      default 10, tolerance [1e-2]) under 80% of the remaining budget;
      grade [Approximate] with [tolerance = 1e-2], [confidence = 1.]
      (the early-stop bound is deterministic).
    - {b sample} — a fixed 4096-world Monte-Carlo estimate, {e without}
      budget, so it always returns; grade [Approximate] with the
      Hoeffding tolerance [≈0.031] at confidence [0.999].

    Only budget trips, {!Naive.Too_many_worlds} and {!Cannot_answer}
    fall through the ladder (counter [pquery.degraded], and
    [resilience.degradations] per step); other exceptions — and any
    failure of the sampling rung — propagate. Results are never cached:
    a degraded answer is an artefact of this call's budget, not of the
    document. *)
val rank_graded :
  ?budget:Imprecise_resilience.Budget.t ->
  ?world_limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  Pxml.doc ->
  string ->
  Answer.t list Imprecise_resilience.Degrade.graded

(** [rank_cached ~collection ~generation doc query] is {!rank} memoized in
    the process-wide {!Cache.global}. [collection] names the document
    (typically its store name) and [generation] is its store generation
    ({!Imprecise_store.Store.generation}): entries for superseded document
    states never match again and age out of the LRU. The caller must pass
    the [doc] that [(collection, generation)] actually refers to —
    {!Imprecise.query_store} does this bookkeeping for you. Exceptions are
    not cached: in particular a budget trip mid-computation leaves the
    cache exactly as it was, so cancelled queries cannot poison it. *)
val rank_cached :
  ?budget:Imprecise_resilience.Budget.t ->
  ?strategy:strategy ->
  ?world_limit:float ->
  ?jobs:int ->
  ?top_k:int ->
  ?top_k_tolerance:float ->
  collection:string ->
  generation:int ->
  Pxml.doc ->
  string ->
  Answer.t list

(** [plan doc query] is the static plan {!rank} with [Auto] consults: the
    route, cost/cardinality bounds, discharged proof obligations or
    [P00n] fallback reasons, and the enumeration shard hint (see
    {!Imprecise_analyze.Plan}). Exposed for [imprecise check --plan] and
    the certification harnesses; [rank] computes it internally (span
    [analyze.plan], histogram [analyze.plan] in ms, event [pquery.plan],
    flight-record note ["plan"]). *)
val plan : Pxml.doc -> string -> Imprecise_analyze.Plan.t

(** [used_strategy doc query] reports which evaluator {!rank} with [Auto]
    would use ([`Direct] or [`Enumerate]). This is the planner's route
    prediction — exact, certified by the differential fuzz harness: the
    planner and the direct evaluator share one fragment definition
    ([Imprecise_xpath.Fragment]) and decide the data-dependent checks
    identically (summary automaton vs document walk). *)
val used_strategy : Pxml.doc -> string -> [ `Direct | `Enumerate ]

(** {1 Explanations}

    Why does an answer have the probability it has? [explain] classifies
    the [k] most likely worlds (found without enumeration, see
    {!Imprecise_pxml.Worlds.most_likely}) by whether the value is part of
    the query answer there. The probability mass covered by those [k]
    worlds bounds how representative the explanation is. *)

type explanation = {
  prob : float;  (** P(value ∈ answer), from {!rank} with [Auto] *)
  supporting : (float * Imprecise_xml.Tree.t list) list;
      (** most likely worlds in which the value is in the answer *)
  opposing : (float * Imprecise_xml.Tree.t list) list;
      (** most likely worlds in which it is not *)
  covered : float;  (** total probability mass of the worlds examined *)
}

(** [explain ?k doc query value] — [k] (default 10) bounds how many worlds
    are examined. The query is parsed and ranked exactly once. *)
val explain : ?k:int -> Pxml.doc -> string -> string -> explanation
