module Obs = Imprecise_obs.Obs

let c_hit = Obs.Metrics.counter "pquery.cache.hit"

let c_miss = Obs.Metrics.counter "pquery.cache.miss"

let c_evict = Obs.Metrics.counter "pquery.cache.evict"

(* Classic LRU: hash table into an intrusive doubly-linked recency list,
   most-recent at the head. All operations O(1). *)

type node = {
  key : string;
  mutable value : Answer.t list;
  mutable prev : node option;  (** towards the head (more recent) *)
  mutable next : node option;  (** towards the tail (least recent) *)
}

type t = {
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable capacity : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  { tbl = Hashtbl.create 64; head = None; tail = None; capacity }

let capacity t = t.capacity

let length t = Hashtbl.length t.tbl

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      Obs.Metrics.incr c_evict

let set_capacity t capacity =
  if capacity <= 0 then invalid_arg "Cache.set_capacity: capacity must be positive";
  t.capacity <- capacity;
  while length t > t.capacity do
    evict_tail t
  done

let find t key =
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some n ->
        Obs.Metrics.incr c_hit;
        touch t n;
        Some n.value
    | None ->
        Obs.Metrics.incr c_miss;
        None
  in
  (* gated: no fields are built unless someone is recording events *)
  if Obs.Event.enabled () then
    Obs.Event.emit
      ~fields:[ ("hit", Obs.Json.Bool (r <> None)); ("key", Obs.Json.String key) ]
      "pquery.cache";
  r

let add t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- value;
      touch t n
  | None ->
      if length t >= t.capacity then evict_tail t;
      let n = { key; value; prev = None; next = None } in
      Hashtbl.add t.tbl key n;
      push_front t n

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl key

(* Composite key. The generation is what invalidates: every [Store.put]
   stamps the document with a fresh generation, so entries for superseded
   document states can never be hit again and age out of the LRU. Each
   string field is length-prefixed so the encoding is injective: a plain
   separator-joined key ("c#g1#v#q") collides when a collection or query
   itself contains the separator — e.g. ("c", 1, "v", "x#g1#v#x") and
   ("c#g1#v#x", 1, "v", "x") used to produce the same key. The field
   order still puts the query last so keys stay readable in debuggers. *)
let key ~collection ~generation ~variant ~query =
  Printf.sprintf "%d:%s#g%d#%d:%s#%d:%s" (String.length collection) collection
    generation (String.length variant) variant (String.length query) query

let global = create ~capacity:256 ()
