(** LRU cache for ranked query answers.

    Keys are composite strings built by {!key} from [(collection, document
    generation, evaluation variant, query text)]. Invalidation is by
    {e generation}, not by deletion: each [Store.put] stamps the document
    with a fresh, process-unique generation, so entries computed against a
    superseded document state simply never match again and age out of the
    LRU. Hits, misses and evictions are counted in the global metrics
    registry as [pquery.cache.hit] / [.miss] / [.evict].

    Not domain-safe: confine a cache (including {!global}) to one domain.
    The parallel evaluator spawns domains {e below} the cache, so the
    normal [rank_cached] path never shares it. *)

type t

(** [create ?capacity ()] — [capacity] (default 256) must be positive;
    raises [Invalid_argument] otherwise. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Entries currently held. *)
val length : t -> int

(** [set_capacity t n] shrinks or grows the bound, evicting the least
    recently used entries as needed. *)
val set_capacity : t -> int -> unit

val clear : t -> unit

(** [find t key] is the cached answer, marking it most recently used.
    Counts a hit or a miss. *)
val find : t -> string -> Answer.t list option

(** [add t key answers] inserts or replaces, evicting the least recently
    used entry when full. *)
val add : t -> string -> Answer.t list -> unit

val remove : t -> string -> unit

(** [key ~collection ~generation ~variant ~query] builds the composite
    cache key. [variant] encodes everything besides the document and query
    that determines the answer (strategy, top-k). *)
val key : collection:string -> generation:int -> variant:string -> query:string -> string

(** The process-wide query-answer cache used by [Pquery.rank_cached]. *)
val global : t
