module Pxml = Imprecise_pxml.Pxml
module Obs = Imprecise_obs.Obs

type strategy = Auto | Direct_only | Enumerate_only | Sample of { n : int; seed : int }

exception Cannot_answer of string

(* Which evaluator actually answered, and how much it amalgamated; the
   [Auto] fallback shows up as a direct.unsupported + enumerate pair. *)
let c_ranks = Obs.Metrics.counter "pquery.ranks"

let c_direct = Obs.Metrics.counter "pquery.path.direct"

let c_enumerate = Obs.Metrics.counter "pquery.path.enumerate"

let c_sample = Obs.Metrics.counter "pquery.path.sample"

let c_unsupported = Obs.Metrics.counter "pquery.direct_unsupported"

let c_answers = Obs.Metrics.counter "pquery.answers_amalgamated"

let rank ?(strategy = Auto) ?world_limit doc query =
  Obs.Metrics.incr c_ranks;
  Obs.Trace.with_span "pquery.rank" @@ fun () ->
  let expr = Imprecise_xpath.Parser.parse_exn query in
  let enumerate () =
    Obs.Metrics.incr c_enumerate;
    Obs.Trace.with_span "enumerate" @@ fun () ->
    try Naive.rank_expr ?limit:world_limit doc expr
    with Naive.Too_many_worlds n ->
      raise (Cannot_answer (Fmt.str "document has %g possible worlds; too many to enumerate" n))
  in
  let direct () =
    let answers = Obs.Trace.with_span "direct" (fun () -> Direct.rank_expr doc expr) in
    Obs.Metrics.incr c_direct;
    answers
  in
  let answers =
    match strategy with
    | Enumerate_only -> enumerate ()
    | Direct_only -> (
        try direct ()
        with Direct.Unsupported msg ->
          Obs.Metrics.incr c_unsupported;
          raise (Cannot_answer msg))
    | Auto -> (
        try direct ()
        with Direct.Unsupported _ ->
          Obs.Metrics.incr c_unsupported;
          enumerate ())
    | Sample { n; seed } ->
        if n <= 0 then raise (Cannot_answer "sample size must be positive");
        Obs.Metrics.incr c_sample;
        Obs.Trace.with_span "sample" @@ fun () ->
        let worlds, _ =
          Imprecise_pxml.Worlds.sample_many ~n (Imprecise_prng.Prng.make seed) doc
        in
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (_, forest) ->
            List.iter
              (fun v ->
                let prev = Option.value ~default:0. (Hashtbl.find_opt tbl v) in
                Hashtbl.replace tbl v (prev +. (1. /. float_of_int n)))
              (Naive.answer_in_world forest expr))
          worlds;
        Answer.rank
          (Hashtbl.fold (fun value prob acc -> { Answer.value; prob } :: acc) tbl [])
  in
  Obs.Metrics.incr ~by:(List.length answers) c_answers;
  answers

let used_strategy doc query =
  let expr = Imprecise_xpath.Parser.parse_exn query in
  match Direct.rank_expr doc expr with
  | _ -> `Direct
  | exception Direct.Unsupported _ -> `Enumerate

type explanation = {
  prob : float;
  supporting : (float * Imprecise_xml.Tree.t list) list;
  opposing : (float * Imprecise_xml.Tree.t list) list;
  covered : float;
}

let explain ?(k = 10) doc query value =
  let expr = Imprecise_xpath.Parser.parse_exn query in
  let prob =
    match
      List.find_opt (fun (a : Answer.t) -> a.Answer.value = value) (rank doc query)
    with
    | Some a -> a.Answer.prob
    | None -> 0.
  in
  let worlds = Imprecise_pxml.Worlds.most_likely ~k doc in
  let supporting, opposing =
    List.partition
      (fun (_, forest) -> List.mem value (Naive.answer_in_world forest expr))
      worlds
  in
  let covered = List.fold_left (fun acc (p, _) -> acc +. p) 0. worlds in
  { prob; supporting; opposing; covered }
