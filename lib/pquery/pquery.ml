module Pxml = Imprecise_pxml.Pxml
module Eval = Imprecise_xpath.Eval
module Obs = Imprecise_obs.Obs
module Budget = Imprecise_resilience.Budget
module Degrade = Imprecise_resilience.Degrade

type strategy = Auto | Direct_only | Enumerate_only | Sample of { n : int; seed : int }

exception Cannot_answer of string

(* Which evaluator actually answered, and how much it amalgamated; the
   [Auto] fallback shows up as a direct.unsupported + enumerate pair. *)
let c_ranks = Obs.Metrics.counter "pquery.ranks"

let c_direct = Obs.Metrics.counter "pquery.path.direct"

let c_enumerate = Obs.Metrics.counter "pquery.path.enumerate"

let c_sample = Obs.Metrics.counter "pquery.path.sample"

let c_unsupported = Obs.Metrics.counter "pquery.direct_unsupported"

let c_answers = Obs.Metrics.counter "pquery.answers_amalgamated"

let c_static_pruned = Obs.Metrics.counter "pquery.static_pruned"

let c_degraded = Obs.Metrics.counter "pquery.degraded"

(* registered by Naive; interned here so flight records can report the
   per-query worlds delta without a by-name lookup on the hot path *)
let c_worlds_enumerated = Obs.Metrics.counter "pquery.worlds_enumerated"

(* planning latency, in milliseconds (spans only reach an installed trace
   sink; the histogram is what bench snapshots can gate on) *)
let h_plan = Obs.Metrics.histogram "analyze.plan"

let compile = Eval.compile_exn

let truncate top_k answers =
  match top_k with Some k -> List.filteri (fun i _ -> i < k) answers | None -> answers

(* Statically-empty queries need no evaluation at all: the analyzer's
   soundness contract (see doc/analysis.md) guarantees zero answers in
   every possible world, so the amalgamated ranking is []. The summary is
   one linear walk of the representation — nothing compared to world
   enumeration, and usually worth it even against the direct evaluator —
   and is shared with the planner below. *)
let statically_empty summary expr =
  Obs.Trace.with_span "analyze.check" @@ fun () ->
  Imprecise_analyze.Query_check.statically_empty ~summary expr

(* The static planner (doc/analysis.md): route + cost bounds + proof
   obligations / fallback reasons, from the summary alone. *)
let plan_of ~summary ?source expr =
  let t0 = Obs.Clock.now () in
  let p =
    Obs.Trace.with_span "analyze.plan" @@ fun () ->
    Imprecise_analyze.Plan.plan ~summary ?source expr
  in
  Obs.Metrics.observe h_plan ((Obs.Clock.now () -. t0) *. 1000.);
  p

let rank_compiled ?budget ?(strategy = Auto) ?(static_check = true) ?world_limit
    ?(jobs = 1) ?top_k ?top_k_tolerance doc query =
  Obs.Metrics.incr c_ranks;
  Obs.Trace.with_span "pquery.rank" @@ fun () ->
  Obs.Recorder.run ~op:"pquery.rank" ~detail:(Eval.compiled_source query) @@ fun () ->
  (match top_k with
  | Some k when k <= 0 -> raise (Cannot_answer "top_k must be positive")
  | _ -> ());
  Option.iter Budget.check budget;
  let expr = Eval.compiled_ast query in
  (* One summary serves both static passes; skipped entirely when neither
     the prune nor the planner will run. *)
  let summary =
    if static_check || strategy = Auto then
      Some
        (Obs.Trace.with_span "analyze.summary" (fun () ->
             Imprecise_analyze.Summary.of_doc doc))
    else None
  in
  if
    static_check
    && match summary with Some s -> statically_empty s expr | None -> false
  then begin
    Obs.Metrics.incr c_static_pruned;
    Obs.Recorder.note "path" (Obs.Json.String "static_pruned");
    []
  end
  else
  let enumerate ~jobs () =
    Obs.Metrics.incr c_enumerate;
    Obs.Recorder.note "path" (Obs.Json.String "enumerate");
    Obs.Trace.with_span "enumerate" @@ fun () ->
    (* worlds walked by *this* query, as a counter delta — exact in the
       common one-query-at-a-time case, an aggregate-rate approximation
       when parallel queries interleave *)
    let w0 = Obs.Metrics.count c_worlds_enumerated in
    let answers =
      try
        Naive.rank_expr ?budget ?limit:world_limit ~jobs ?top_k
          ?tolerance:top_k_tolerance doc expr
      with Naive.Too_many_worlds n ->
        raise (Cannot_answer (Fmt.str "document has %g possible worlds; too many to enumerate" n))
    in
    Obs.Recorder.note "worlds"
      (Obs.Json.Int (Obs.Metrics.count c_worlds_enumerated - w0));
    answers
  in
  let direct () =
    let answers = Obs.Trace.with_span "direct" (fun () -> Direct.rank_expr doc expr) in
    Obs.Metrics.incr c_direct;
    Obs.Recorder.note "path" (Obs.Json.String "direct");
    truncate top_k answers
  in
  let answers =
    match strategy with
    | Enumerate_only -> enumerate ~jobs ()
    | Direct_only -> (
        try direct ()
        with Direct.Unsupported msg ->
          Obs.Metrics.incr c_unsupported;
          raise (Cannot_answer msg))
    | Auto -> (
        let plan =
          plan_of
            ~summary:(Option.get summary) (* always built for Auto *)
            ~source:(Eval.compiled_source query)
            expr
        in
        Obs.Recorder.note "plan" (Imprecise_analyze.Plan.to_json plan);
        if Obs.Event.enabled () then
          Obs.Event.emit
            ~fields:
              [
                ("query", Obs.Json.String (Eval.compiled_source query));
                ("plan", Imprecise_analyze.Plan.to_json plan);
              ]
            "pquery.plan";
        match plan.Imprecise_analyze.Plan.route with
        | Imprecise_analyze.Plan.Direct -> (
            try direct ()
            with Direct.Unsupported _ ->
              (* unreachable by construction — the planner and evaluator
                 share one fragment definition — but never let a planner
                 defect lose an answer *)
              Obs.Metrics.incr c_unsupported;
              enumerate ~jobs ())
        | Imprecise_analyze.Plan.Enumerate ->
            if plan.Imprecise_analyze.Plan.reasons <> [] then
              Obs.Metrics.incr c_unsupported;
            (* pre-size enumeration shards from the cost bound, unless the
               caller pinned a parallelism degree *)
            let jobs =
              if jobs = 1 then max 1 plan.Imprecise_analyze.Plan.shards else jobs
            in
            enumerate ~jobs ())
    | Sample { n; seed } ->
        if n <= 0 then raise (Cannot_answer "sample size must be positive");
        Obs.Metrics.incr c_sample;
        Obs.Recorder.note "path" (Obs.Json.String "sample");
        Obs.Trace.with_span "sample" @@ fun () ->
        let worlds, _ =
          Imprecise_pxml.Worlds.sample_many ~n (Imprecise_prng.Prng.make seed) doc
        in
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun (_, forest) ->
            Option.iter Budget.tick budget;
            List.iter
              (fun v ->
                let prev = Option.value ~default:0. (Hashtbl.find_opt tbl v) in
                Hashtbl.replace tbl v (prev +. (1. /. float_of_int n)))
              (Naive.answer_in_world forest expr))
          worlds;
        truncate top_k
          (Answer.rank
             (Hashtbl.fold (fun value prob acc -> { Answer.value; prob } :: acc) tbl []))
  in
  Obs.Metrics.incr ~by:(List.length answers) c_answers;
  Obs.Recorder.note "answers" (Obs.Json.Int (List.length answers));
  answers

let rank ?budget ?strategy ?static_check ?world_limit ?jobs ?top_k ?top_k_tolerance doc
    query =
  rank_compiled ?budget ?strategy ?static_check ?world_limit ?jobs ?top_k
    ?top_k_tolerance doc (compile query)

(* ---- graceful degradation ------------------------------------------------ *)

(* Exceptions that mean "the exact computation was too expensive" — the
   next rung of the ladder may still answer. Anything else (parse errors,
   invalid arguments, IO) propagates untouched. *)
let degradable = function
  | Budget.Exceeded _ | Naive.Too_many_worlds _ | Cannot_answer _ -> true
  | _ -> false

(* The sampling rung is fixed-cost: n draws, whatever the document size.
   Hoeffding: P(|p̂ - p| > ε) <= 2·exp(-2nε²) per value, so with
   ε = sqrt(ln(2/(1-c)) / 2n) each reported probability is within ε of the
   true one with probability at least c. *)
let sample_n = 4096

let sample_confidence = 0.999

let sample_tolerance =
  sqrt (log (2. /. (1. -. sample_confidence)) /. (2. *. float_of_int sample_n))

let rank_graded ?budget ?world_limit ?jobs ?top_k doc query =
  (* The graded record is the audit trail for a degraded answer: the
     ladder's fallbacks land here as "degraded_from" notes (each failed
     rung closed its own pquery.rank record before the fallback fired),
     and the final grade is noted below. *)
  Obs.Trace.with_span "pquery.rank_graded" @@ fun () ->
  Obs.Recorder.run ~op:"pquery.rank_graded" ~detail:query @@ fun () ->
  let compiled = compile query in
  (* Sub-budgets are carved eagerly: the exact rung gets 60% of whatever
     deadline/pool the caller granted, the top-k rung 80% — tripping a
     sub-budget leaves the caller's own budget live, so later rungs still
     get their slice. The sampling rung takes no budget at all: its cost
     is fixed, so it always returns, which is what makes the ladder
     total. *)
  let sub fraction = Option.map (Budget.sub ~fraction) budget in
  let rungs =
    [
      {
        Degrade.name = "exact";
        run =
          (fun () ->
            Degrade.exact
              (rank_compiled ?budget:(sub 0.6) ?world_limit ?jobs ?top_k doc compiled));
      };
      {
        Degrade.name = "top_k";
        run =
          (fun () ->
            let k = Option.value ~default:10 top_k in
            Degrade.approximate ~rung:"top_k" ~tolerance:1e-2 ~confidence:1.
              (rank_compiled ?budget:(sub 0.8) ~strategy:Enumerate_only
                 ~world_limit:5e6 ?jobs ~top_k:k ~top_k_tolerance:1e-2 doc compiled));
      };
      {
        Degrade.name = "sample";
        run =
          (fun () ->
            Degrade.approximate ~rung:"sample" ~tolerance:sample_tolerance
              ~confidence:sample_confidence
              (rank_compiled
                 ~strategy:(Sample { n = sample_n; seed = 42 })
                 ?top_k doc compiled));
      };
    ]
  in
  let graded = Degrade.ladder ~degradable rungs in
  Obs.Recorder.note "grade"
    (Obs.Json.String (Fmt.str "%a" Degrade.pp_grade graded.Degrade.grade));
  if not (Degrade.is_exact graded.Degrade.grade) then begin
    Obs.Metrics.incr c_degraded;
    Obs.Recorder.outcome "degraded"
  end;
  graded

(* ---- the LRU answer cache ----------------------------------------------- *)

(* Everything besides the document state and the query text that can change
   the answer must land in the cache key. [jobs] is deliberately left out
   (it only permutes float summation order, never the distribution), as is
   [world_limit] (it bounds effort, not the value — a hit just means the
   effort was already spent). *)
let variant_of ~strategy ~top_k ~top_k_tolerance =
  let s =
    match strategy with
    | Auto -> "auto"
    | Direct_only -> "direct"
    | Enumerate_only -> "enumerate"
    | Sample { n; seed } -> Printf.sprintf "sample:%d:%d" n seed
  in
  match top_k with
  | None -> s
  | Some k ->
      Printf.sprintf "%s:top%d:%g" s k (Option.value ~default:1e-9 top_k_tolerance)

let rank_cached ?budget ?(strategy = Auto) ?world_limit ?jobs ?top_k ?top_k_tolerance
    ~collection ~generation doc query =
  let key =
    Cache.key ~collection ~generation
      ~variant:(variant_of ~strategy ~top_k ~top_k_tolerance)
      ~query
  in
  match Cache.find Cache.global key with
  | Some answers -> answers
  | None ->
      (* [Cache.add] runs only after [rank] returns normally: a rank that
         raises — budget trip, Too_many_worlds, anything — leaves the
         cache untouched, so a cancelled query can never poison later
         lookups with a partial result. (Regression-tested in
         test_pquery.ml.) *)
      let answers =
        rank ?budget ~strategy ?world_limit ?jobs ?top_k ?top_k_tolerance doc query
      in
      Cache.add Cache.global key answers;
      answers

let plan doc query =
  let expr = Imprecise_xpath.Parser.parse_exn query in
  plan_of ~summary:(Imprecise_analyze.Summary.of_doc doc) ~source:query expr

let used_strategy doc query =
  match (plan doc query).Imprecise_analyze.Plan.route with
  | Imprecise_analyze.Plan.Direct -> `Direct
  | Imprecise_analyze.Plan.Enumerate -> `Enumerate

type explanation = {
  prob : float;
  supporting : (float * Imprecise_xml.Tree.t list) list;
  opposing : (float * Imprecise_xml.Tree.t list) list;
  covered : float;
}

let explain ?(k = 10) doc query value =
  (* Parse once and rank once; the ranked answers and the per-world check
     reuse the same compiled handle. *)
  let compiled = compile query in
  let expr = Eval.compiled_ast compiled in
  let answers = rank_compiled doc compiled in
  let prob =
    match List.find_opt (fun (a : Answer.t) -> a.Answer.value = value) answers with
    | Some a -> a.Answer.prob
    | None -> 0.
  in
  let worlds = Imprecise_pxml.Worlds.most_likely ~k doc in
  let supporting, opposing =
    List.partition
      (fun (_, forest) -> List.mem value (Naive.answer_in_world forest expr))
      worlds
  in
  let covered = List.fold_left (fun acc (p, _) -> acc +. p) 0. worlds in
  { prob; supporting; opposing; covered }
