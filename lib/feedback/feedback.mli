(** The user-feedback half of the information cycle (paper Fig. 1, §VII).

    Feedback on a query answer is traced back to possible worlds: asserting
    that a value is (in)correct removes every world inconsistent with the
    assertion and renormalises the rest — Bayesian conditioning on the
    answer event. Iterated feedback continues the semantic integration
    incrementally, which is the paper's "good is good enough" end game.
    (The paper's demo left this unimplemented; it is built here.)

    The implementation conditions by world filtering, so it is guarded by a
    world-count limit; documents fresh out of integration with effective
    rules are well within it. *)

module Xml = Imprecise_xml
module Pxml = Imprecise_pxml.Pxml

type error =
  | Too_many_worlds of float
  | Contradiction  (** the assertion has probability 0 — no world survives *)

val pp_error : Format.formatter -> error -> unit

(** [condition ?limit doc keep] keeps exactly the worlds satisfying [keep]
    (given the world as a canonical forest), renormalises and compacts. *)
val condition :
  ?limit:float -> Pxml.doc -> (Xml.Tree.t list -> bool) -> (Pxml.doc, error) result

(** [assert_answer ?limit doc ~query ~value ~correct] conditions on the
    event "[value] is in the answer of [query]" being [correct].
    E.g. after the horror-movies query, a user confirming 'Jaws' removes
    every world in which Jaws is not a horror movie. *)
val assert_answer :
  ?limit:float ->
  Pxml.doc ->
  query:string ->
  value:string ->
  correct:bool ->
  (Pxml.doc, error) result

(** [certainty doc] is the probability of the most likely world — 1 when
    integration is complete. Enumeration-guarded like the rest. *)
val certainty : ?limit:float -> Pxml.doc -> float

(** {1 Structure-preserving pruning}

    {!condition} computes the exact posterior but rebuilds the document
    from its world list, which destroys the compact representation. The
    paper's phrasing — feedback is "used to remove data related to
    impossible worlds from the database" — suggests the cheaper operation
    implemented by [prune]: for every possibility of every probability
    node, test whether the assertion is {e certainly violated} whenever
    that possibility is chosen; if so, delete the possibility (and its
    whole subtree) in place, then compact and renormalise.

    Pruning keeps exactly the worlds consistent with the assertion (same
    support as {!condition}) but renormalises locally instead of computing
    the exact posterior; the document only ever shrinks. *)

(** [prune ?rounds doc ~query ~value ~correct] — [rounds] (default 2)
    bounds the prune-to-fixpoint iteration. Returns [Contradiction] if
    pruning would empty a probability node (the assertion has probability
    0). Probability nodes whose hypothetical evaluation cannot be answered
    (enumeration too large) are left untouched — pruning is conservative,
    never wrong. *)
val prune :
  ?rounds:int ->
  Pxml.doc ->
  query:string ->
  value:string ->
  correct:bool ->
  (Pxml.doc, error) result
