module Xml = Imprecise_xml
module Pxml = Imprecise_pxml.Pxml
module Worlds = Imprecise_pxml.Worlds
module Compact = Imprecise_pxml.Compact
module Naive = Imprecise_pquery.Naive

type error = Too_many_worlds of float | Contradiction

let pp_error ppf = function
  | Too_many_worlds n -> Fmt.pf ppf "document has %g worlds; too many to condition" n
  | Contradiction -> Fmt.string ppf "assertion has probability 0 in this document"

let condition ?(limit = 200_000.) doc keep =
  let combos = Pxml.world_count doc in
  if combos > limit then Error (Too_many_worlds combos)
  else begin
    let kept = List.filter (fun (p, forest) -> p > 0. && keep forest) (Worlds.merged doc) in
    let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. kept in
    if total <= 0. then Error Contradiction
    else
      let choices =
        List.map
          (fun (p, forest) -> Pxml.choice ~prob:(p /. total) (List.map Pxml.of_tree forest))
          kept
      in
      Ok (Compact.compact (Pxml.dist choices))
  end

let assert_answer ?limit doc ~query ~value ~correct =
  let expr = Imprecise_xpath.Parser.parse_exn query in
  condition ?limit doc (fun forest ->
      let present = List.mem value (Naive.answer_in_world forest expr) in
      present = correct)

let certainty ?(limit = 200_000.) doc =
  let combos = Pxml.world_count doc in
  if combos > limit then 0.
  else match Worlds.merged doc with [] -> 0. | (p, _) :: _ -> p

(* ---- structure-preserving pruning ---------------------------------------- *)

(* Address of a probability node: from the enclosing probability node, enter
   choice [choice], its regular node [node] (an element), and that element's
   content entry [dist]. The root probability node has the empty path. *)
type step = { choice : int; node : int; dist : int }

let rec dist_paths prefix (d : Pxml.dist) acc =
  let acc = (List.rev prefix, d) :: acc in
  List.fold_left
    (fun acc (ci, (c : Pxml.choice)) ->
      List.fold_left
        (fun acc (ni, n) ->
          match n with
          | Pxml.Text _ -> acc
          | Pxml.Elem (_, _, content) ->
              List.fold_left
                (fun acc (di, d') ->
                  dist_paths ({ choice = ci; node = ni; dist = di } :: prefix) d' acc)
                acc
                (List.mapi (fun i d' -> (i, d')) content))
        acc
        (List.mapi (fun i n -> (i, n)) c.Pxml.nodes))
    acc
    (List.mapi (fun i c -> (i, c)) d.Pxml.choices)

let nth_opt = List.nth_opt

(* Rebuild the document with the probability node at [path] replaced; [None]
   when the path no longer exists (an earlier prune removed it). *)
let rec replace_dist (d : Pxml.dist) path (new_dist : Pxml.dist) : Pxml.dist option =
  match path with
  | [] -> Some new_dist
  | s :: rest -> (
      match nth_opt d.Pxml.choices s.choice with
      | None -> None
      | Some c -> (
          match nth_opt c.Pxml.nodes s.node with
          | None | Some (Pxml.Text _) -> None
          | Some (Pxml.Elem (tag, attrs, content)) -> (
              match nth_opt content s.dist with
              | None -> None
              | Some inner -> (
                  match replace_dist inner rest new_dist with
                  | None -> None
                  | Some inner' ->
                      let content' =
                        List.mapi (fun i d' -> if i = s.dist then inner' else d') content
                      in
                      let nodes' =
                        List.mapi
                          (fun i n ->
                            if i = s.node then Pxml.Elem (tag, attrs, content') else n)
                          c.Pxml.nodes
                      in
                      let choices' =
                        List.mapi
                          (fun i (c' : Pxml.choice) ->
                            if i = s.choice then { c' with Pxml.nodes = nodes' } else c')
                          d.Pxml.choices
                      in
                      Some { Pxml.choices = choices' }))))

let eps = 1e-9

let prune ?(rounds = 2) doc ~query ~value ~correct =
  let module Pquery = Imprecise_pquery.Pquery in
  let module Answer = Imprecise_pquery.Answer in
  let answer_prob doc =
    match Pquery.rank doc query with
    | answers ->
        Some
          (match List.find_opt (fun (a : Answer.t) -> a.Answer.value = value) answers with
          | Some a -> a.Answer.prob
          | None -> 0.)
    | exception Pquery.Cannot_answer _ -> None
  in
  (* A possibility is deleted when choosing it makes the assertion certainly
     false: asserted-present but P = 0, or asserted-absent but P = 1. *)
  let choice_impossible doc path (c : Pxml.choice) =
    match replace_dist doc path { Pxml.choices = [ { c with Pxml.prob = 1. } ] } with
    | None -> false
    | Some hyp -> (
        match answer_prob hyp with
        | None -> false
        | Some p -> if correct then p <= eps else p >= 1. -. eps)
  in
  let exception Contradicted in
  let prune_round doc =
    let changed = ref false in
    let doc = ref doc in
    List.iter
      (fun (path, (d : Pxml.dist)) ->
        if List.length d.Pxml.choices > 1 then begin
          let kept =
            List.filter (fun c -> not (choice_impossible !doc path c)) d.Pxml.choices
          in
          if kept = [] then raise Contradicted;
          if List.length kept < List.length d.Pxml.choices then begin
            let total = List.fold_left (fun acc (c : Pxml.choice) -> acc +. c.prob) 0. kept in
            let renorm =
              List.map (fun (c : Pxml.choice) -> { c with Pxml.prob = c.prob /. total }) kept
            in
            match replace_dist !doc path { Pxml.choices = renorm } with
            | Some doc' ->
                doc := doc';
                changed := true
            | None -> ()
          end
        end)
      (* Deepest first: pruning a probability node renumbers choices inside
         it, which would invalidate paths routing through it — its
         descendants are therefore handled before it, and sibling subtrees
         are unaffected. *)
      (List.sort
         (fun (p1, _) (p2, _) -> Int.compare (List.length p2) (List.length p1))
         (dist_paths [] !doc []));
    (!doc, !changed)
  in
  let rec go k doc =
    if k <= 0 then Ok (Compact.compact doc)
    else
      match prune_round doc with
      | doc', true -> go (k - 1) doc'
      | doc', false -> Ok (Compact.compact doc')
      | exception Contradicted -> Error Contradiction
  in
  (* The assertion itself may already have probability 0 — e.g. on a fully
     certain document, where there is no possibility left to prune. *)
  match answer_prob doc with
  | Some p when (correct && p <= eps) || ((not correct) && p >= 1. -. eps) ->
      Error Contradiction
  | _ -> go rounds doc
