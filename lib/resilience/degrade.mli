(** Graceful degradation: a ladder of increasingly approximate rungs.

    "Good is good enough": when the exact computation blows its budget,
    return a cheaper answer {e tagged with how approximate it is} instead
    of raising. A ladder is an ordered list of rungs; each rung either
    produces a {!graded} result or raises. Exceptions the caller marks
    [degradable] (budget trips, enumeration limits) fall through to the
    next rung; anything else — and the last rung's failure — propagates.

    The query ladder lives in {!Imprecise_pquery.Pquery.rank_graded}:
    exact enumeration → top-k with a bounded tolerance → Monte-Carlo
    sampling with a Hoeffding confidence bound. Each fallback step bumps
    [resilience.degradations] and runs under a [degrade.<rung>] trace
    span. *)

(** How trustworthy a result is. [Approximate] declares the bound the
    producing rung guarantees: with probability at least [confidence],
    every reported probability is within [tolerance] of the exact
    value ([confidence = 1.] for deterministic bounds like top-k's). *)
type grade =
  | Exact
  | Approximate of { rung : string; tolerance : float; confidence : float }

type 'a graded = { value : 'a; grade : grade }

val exact : 'a -> 'a graded

val approximate : rung:string -> tolerance:float -> confidence:float -> 'a -> 'a graded

val is_exact : grade -> bool

val pp_grade : Format.formatter -> grade -> unit

type 'a rung = { name : string; run : unit -> 'a graded }

(** [ladder ?on_fallback ~degradable rungs] runs the rungs in order and
    returns the first one's result. A rung raising [e] with
    [degradable e = true] falls to the next rung (after calling
    [on_fallback ~rung e] and bumping [resilience.degradations]); a
    non-degradable exception, or the last rung failing for any reason,
    is re-raised. [Invalid_argument] on an empty ladder. *)
val ladder :
  ?on_fallback:(rung:string -> exn -> unit) ->
  degradable:(exn -> bool) ->
  'a rung list ->
  'a graded
