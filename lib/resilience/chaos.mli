(** Scripted fault plans for chaos testing.

    PR 1's crash matrix injected one fault at one counted IO operation.
    This module generalises that to a {e plan}: a set of named fault
    sites, each with a schedule saying which hits of that site fault.
    Subsystem shims consult the plan — {!Imprecise_store.Store.Io.flaky}
    asks it per IO operation, a test oracle can ask it per decision —
    and the harness asserts afterwards how often each site actually
    fired ({!hits}/{!faults}).

    Plans are deterministic (a pure function of the schedule and the hit
    order) and domain-safe: counters are mutex-guarded, so a plan can be
    shared by the parallel matching grid's worker domains. *)

(** When a site faults, in terms of its own 1-based hit count:
    - [Never] / [Always] — self-explanatory;
    - [First n] — the first [n] hits fault, later ones succeed (a
      transient fault a retry gets past);
    - [At hits] — exactly the listed hits fault;
    - [Every n] — every [n]-th hit faults. *)
type spec = Never | Always | First of int | At of int list | Every of int

type t

(** [plan sites] — a fresh plan. Sites not listed never fault (but their
    hits are still counted). *)
val plan : (string * spec) list -> t

(** [fires t site] records one hit of [site] and says whether it should
    fault this time. The injection itself is the caller's business —
    raising, returning torn data, whatever the scenario scripts. *)
val fires : t -> string -> bool

(** [hits t site] — how often [site] was consulted so far. *)
val hits : t -> string -> int

(** [faults t site] — how many of those hits fired. *)
val faults : t -> string -> int

(** All sites seen so far with their (hits, faults), sorted by name. *)
val report : t -> (string * (int * int)) list
