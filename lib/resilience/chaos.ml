type spec = Never | Always | First of int | At of int list | Every of int

type site = { mutable hit : int; mutable fired : int }

type t = {
  specs : (string * spec) list;
  sites : (string, site) Hashtbl.t;
  lock : Mutex.t;
}

let plan specs = { specs; sites = Hashtbl.create 8; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let site t name =
  match Hashtbl.find_opt t.sites name with
  | Some s -> s
  | None ->
      let s = { hit = 0; fired = 0 } in
      Hashtbl.add t.sites name s;
      s

let matches spec n =
  match spec with
  | Never -> false
  | Always -> true
  | First k -> n <= k
  | At hits -> List.mem n hits
  | Every k -> k > 0 && n mod k = 0

let fires t name =
  with_lock t @@ fun () ->
  let s = site t name in
  s.hit <- s.hit + 1;
  let spec = Option.value ~default:Never (List.assoc_opt name t.specs) in
  let fire = matches spec s.hit in
  if fire then s.fired <- s.fired + 1;
  fire

let hits t name = with_lock t @@ fun () -> (site t name).hit

let faults t name = with_lock t @@ fun () -> (site t name).fired

let report t =
  with_lock t @@ fun () ->
  Hashtbl.fold (fun name s acc -> (name, (s.hit, s.fired)) :: acc) t.sites []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
