(** Cooperative work budgets: wall-clock deadlines and world/node caps.

    A budget is a cancellation token shared by every piece of a
    computation, across domains: world enumeration ticks it per world,
    the integration candidate grid ticks it per pair, and any holder can
    {!cancel} it. The first exhaustion — deadline passed, work units
    spent, or an explicit cancel — {e trips} the budget: the reason is
    recorded once, the shared cancelled flag is raised so sibling domains
    stop at their next tick, and every subsequent {!check}/{!tick} raises
    {!Exceeded} with the original reason.

    Budgets nest: {!sub} carves a child budget out of the remaining time
    and work units. A child tripping does {e not} trip its parent — the
    degradation ladder ({!Degrade}, {!Imprecise_pquery.Pquery.rank_graded})
    relies on that to give each rung a slice and fall through to the next
    when the slice is spent — while a tripped parent fails every child
    promptly.

    Checks are cheap (an atomic load or two and a clock read), so ticking
    once per world or grid cell is fine. Trips bump
    [resilience.deadline_exceeded], [resilience.world_budget_exceeded] or
    [resilience.cancellations] — once per budget, not per raising domain. *)

type t

(** Why a budget tripped: its deadline passed, its world/work-unit pool
    ran dry, or someone called {!cancel} (including the implicit cancel
    when a sibling domain fails, so the others stop promptly). *)
type reason = Deadline | Worlds | Cancelled

exception Exceeded of reason

(** [create ?timeout_ms ?max_worlds ?clock ()] — a budget that trips
    [timeout_ms] milliseconds from now (measured by [clock], default
    [Unix.gettimeofday]) and/or after [max_worlds] work units have been
    ticked. With neither limit the budget only trips via {!cancel} (or a
    parent). [Invalid_argument] on non-positive limits. *)
val create : ?timeout_ms:int -> ?max_worlds:int -> ?clock:(unit -> float) -> unit -> t

(** [sub ?fraction t] is a child budget holding [fraction] (default 0.5,
    clamped to [0..1]) of [t]'s remaining time and work units. Ticks on
    the child also drain the parent's pool; a check on the child also
    checks the parent (parent trips win, and carry the parent's reason).
    The child tripping leaves the parent live. *)
val sub : ?fraction:float -> t -> t

(** [check t] raises {!Exceeded} iff [t] (or an ancestor) has tripped or
    its deadline has passed. Consumes nothing. *)
val check : t -> unit

(** [tick ?n t] consumes [n] work units (default 1) from [t] and every
    ancestor, then behaves like {!check}. The unit is whatever the caller
    counts — enumerated worlds in {!Imprecise_pxml.Worlds}, candidate
    pairs in {!Imprecise_integrate.Matching}, sampled worlds in the
    sampling evaluator. *)
val tick : ?n:int -> t -> unit

(** [cancel t] trips [t] with reason {!Cancelled} (idempotent; a budget
    that already tripped keeps its original reason). Never raises — the
    raise happens at the victims' next {!check}. *)
val cancel : t -> unit

(** [exceeded t] is a passive probe: the reason [t] would raise with, or
    [None]. Unlike {!check} it never records a trip and never bumps a
    counter. *)
val exceeded : t -> reason option

(** [remaining_ms t] — milliseconds until [t]'s own deadline (possibly
    negative), or [None] if it has no deadline. *)
val remaining_ms : t -> float option

(** [remaining_worlds t] — work units left in [t]'s own pool, or [None]
    if it is uncapped. *)
val remaining_worlds : t -> int option

val reason_to_string : reason -> string

val pp_reason : Format.formatter -> reason -> unit
