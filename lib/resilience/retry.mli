(** Retry with exponential backoff and deterministic jitter.

    Wraps an operation that can fail transiently — store IO under disk
    pressure, injected chaos faults — and re-runs it a bounded number of
    times. The caller classifies each exception as [Transient] (worth
    retrying) or [Permanent] (re-raised immediately);
    {!Imprecise_store.Store.Io.classify_error} is the classifier for
    store IO.

    Backoff is exponential with a cap, and jittered {e deterministically}:
    the jitter comes from {!Imprecise_prng.Prng} seeded by the policy, so
    a retry schedule is reproducible — the chaos harness can assert exact
    behaviour while production still decorrelates concurrent retriers by
    seeding differently. Every retry bumps [resilience.retries]; running
    out of attempts bumps [resilience.retry_giveups]. *)

type error_class = Transient | Permanent

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay_ms : float;  (** delay before the first retry *)
  multiplier : float;  (** growth factor per further retry *)
  max_delay_ms : float;  (** backoff cap *)
  jitter : float;  (** relative jitter in [0..1]: delay × (1 ± jitter) *)
  seed : int;  (** PRNG seed for the jitter *)
}

(** [policy ()] is 3 attempts, 10 ms base, ×2 growth, 500 ms cap, ±25%
    jitter, seed 1; every field can be overridden. [Invalid_argument] on
    [max_attempts < 1] or negative delays. *)
val policy :
  ?max_attempts:int ->
  ?base_delay_ms:float ->
  ?multiplier:float ->
  ?max_delay_ms:float ->
  ?jitter:float ->
  ?seed:int ->
  unit ->
  policy

(** [delay_ms p ~attempt] is the jittered delay after failed attempt
    [attempt] (1-based) — a pure function of the policy, so tests can
    predict the schedule. *)
val delay_ms : policy -> attempt:int -> float

(** [run ?sleep ?on_retry ~classify p f] runs [f ()]; on an exception
    [classify]d [Transient] it sleeps ([sleep] is in seconds, default
    [Unix.sleepf] — tests inject a recorder) and tries again, up to
    [p.max_attempts] total attempts. [Permanent] exceptions, and the last
    attempt's failure, are re-raised. [on_retry ~attempt e] is called
    before each sleep. *)
val run :
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> exn -> unit) ->
  classify:(exn -> error_class) ->
  policy ->
  (unit -> 'a) ->
  'a
