module Obs = Imprecise_obs.Obs

type reason = Deadline | Worlds | Cancelled

exception Exceeded of reason

type t = {
  deadline : float option; (* absolute, in [clock] units *)
  clock : unit -> float;
  worlds : int Atomic.t option; (* work units remaining *)
  (* raised by the first trip so sibling domains stop at their next tick *)
  cancelled : bool Atomic.t;
  (* the first exhaustion wins; later checks re-raise its reason *)
  tripped : reason option Atomic.t;
  parent : t option;
}

(* Registered at load time so the resilience counters are part of the
   catalogue even for runs that never trip a budget. *)
let c_deadline = Obs.Metrics.counter "resilience.deadline_exceeded"

let c_worlds = Obs.Metrics.counter "resilience.world_budget_exceeded"

let c_cancelled = Obs.Metrics.counter "resilience.cancellations"

let reason_to_string = function
  | Deadline -> "deadline exceeded"
  | Worlds -> "world budget exceeded"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let counter_of = function
  | Deadline -> c_deadline
  | Worlds -> c_worlds
  | Cancelled -> c_cancelled

let create ?timeout_ms ?max_worlds ?(clock = Unix.gettimeofday) () =
  (match timeout_ms with
  | Some ms when ms <= 0 -> invalid_arg "Budget.create: timeout_ms must be positive"
  | _ -> ());
  (match max_worlds with
  | Some n when n <= 0 -> invalid_arg "Budget.create: max_worlds must be positive"
  | _ -> ());
  {
    deadline = Option.map (fun ms -> clock () +. (float_of_int ms /. 1000.)) timeout_ms;
    clock;
    worlds = Option.map Atomic.make max_worlds;
    cancelled = Atomic.make false;
    tripped = Atomic.make None;
    parent = None;
  }

(* Record the first trip, bump its counter exactly once, raise the flag
   the other domains poll — then raise. A budget that already tripped
   keeps its original reason whatever later exhaustions occur. *)
let trip t reason =
  let reason =
    if Atomic.compare_and_set t.tripped None (Some reason) then begin
      Obs.Metrics.incr (counter_of reason);
      Obs.Event.emit
        ~fields:[ ("reason", Obs.Json.String (reason_to_string reason)) ]
        "budget.trip";
      Atomic.set t.cancelled true;
      reason
    end
    else Option.value ~default:reason (Atomic.get t.tripped)
  in
  raise (Exceeded reason)

let rec check t =
  (match Atomic.get t.tripped with
  | Some reason -> raise (Exceeded reason)
  | None -> ());
  if Atomic.get t.cancelled then trip t Cancelled;
  (match t.deadline with
  | Some d when t.clock () > d -> trip t Deadline
  | _ -> ());
  match t.parent with Some p -> check p | None -> ()

let rec consume t n =
  (match t.worlds with
  | Some left -> if Atomic.fetch_and_add left (-n) - n < 0 then trip t Worlds
  | None -> ());
  match t.parent with Some p -> consume p n | None -> ()

let tick ?(n = 1) t =
  consume t n;
  check t

let cancel t =
  if Atomic.compare_and_set t.tripped None (Some Cancelled) then begin
    Obs.Metrics.incr c_cancelled;
    Obs.Event.emit
      ~fields:[ ("reason", Obs.Json.String (reason_to_string Cancelled)) ]
      "budget.cancel";
    Atomic.set t.cancelled true
  end

let rec exceeded t =
  match Atomic.get t.tripped with
  | Some reason -> Some reason
  | None ->
      if Atomic.get t.cancelled then Some Cancelled
      else if
        match t.deadline with Some d -> t.clock () > d | None -> false
      then Some Deadline
      else if match t.worlds with Some left -> Atomic.get left <= 0 | None -> false
      then Some Worlds
      else Option.bind t.parent exceeded

let remaining_ms t =
  Option.map (fun d -> (d -. t.clock ()) *. 1000.) t.deadline

let remaining_worlds t = Option.map (fun a -> max 0 (Atomic.get a)) t.worlds

let sub ?(fraction = 0.5) t =
  let fraction = Float.max 0. (Float.min 1. fraction) in
  let deadline =
    Option.map (fun d -> t.clock () +. (fraction *. Float.max 0. (d -. t.clock ()))) t.deadline
  in
  let worlds =
    Option.map
      (fun left ->
        Atomic.make (int_of_float (fraction *. float_of_int (max 0 (Atomic.get left)))))
      t.worlds
  in
  {
    deadline;
    clock = t.clock;
    worlds;
    cancelled = Atomic.make false;
    tripped = Atomic.make None;
    parent = Some t;
  }
