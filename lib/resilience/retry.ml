module Obs = Imprecise_obs.Obs
module Prng = Imprecise_prng.Prng

type error_class = Transient | Permanent

type policy = {
  max_attempts : int;
  base_delay_ms : float;
  multiplier : float;
  max_delay_ms : float;
  jitter : float;
  seed : int;
}

let c_retries = Obs.Metrics.counter "resilience.retries"

let c_giveups = Obs.Metrics.counter "resilience.retry_giveups"

let policy ?(max_attempts = 3) ?(base_delay_ms = 10.) ?(multiplier = 2.)
    ?(max_delay_ms = 500.) ?(jitter = 0.25) ?(seed = 1) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  if base_delay_ms < 0. || max_delay_ms < 0. then
    invalid_arg "Retry.policy: delays must be non-negative";
  if jitter < 0. || jitter > 1. then invalid_arg "Retry.policy: jitter must be in [0,1]";
  { max_attempts; base_delay_ms; multiplier; max_delay_ms; jitter; seed }

(* Deterministic jitter: one PRNG draw per (policy, attempt), so the whole
   schedule is a pure function of the policy. *)
let delay_ms p ~attempt =
  let base =
    Float.min p.max_delay_ms
      (p.base_delay_ms *. (p.multiplier ** float_of_int (attempt - 1)))
  in
  let rec advance rng k = if k <= 0 then rng else advance (snd (Prng.next rng)) (k - 1) in
  let u, _ = Prng.float (advance (Prng.make p.seed) attempt) in
  base *. (1. -. p.jitter +. (2. *. p.jitter *. u))

let run ?(sleep = Unix.sleepf) ?(on_retry = fun ~attempt:_ _ -> ()) ~classify p f =
  let rec go attempt =
    try f ()
    with e when attempt < p.max_attempts && classify e = Transient ->
      Obs.Metrics.incr c_retries;
      Obs.Event.emit
        ~fields:
          [
            ("attempt", Obs.Json.Int attempt);
            ("delay_ms", Obs.Json.Float (delay_ms p ~attempt));
            ("error", Obs.Json.String (Printexc.to_string e));
          ]
        "retry";
      on_retry ~attempt e;
      sleep (delay_ms p ~attempt /. 1000.);
      go (attempt + 1)
  in
  try go 1
  with e ->
    (* out of attempts (or permanent): the caller sees the final failure *)
    if classify e = Transient then begin
      Obs.Metrics.incr c_giveups;
      Obs.Event.emit
        ~fields:
          [
            ("attempts", Obs.Json.Int p.max_attempts);
            ("error", Obs.Json.String (Printexc.to_string e));
          ]
        "retry.giveup"
    end;
    raise e
