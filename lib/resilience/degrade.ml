module Obs = Imprecise_obs.Obs

type grade =
  | Exact
  | Approximate of { rung : string; tolerance : float; confidence : float }

type 'a graded = { value : 'a; grade : grade }

let c_degradations = Obs.Metrics.counter "resilience.degradations"

let exact value = { value; grade = Exact }

let approximate ~rung ~tolerance ~confidence value =
  { value; grade = Approximate { rung; tolerance; confidence } }

let is_exact = function Exact -> true | Approximate _ -> false

let pp_grade ppf = function
  | Exact -> Format.pp_print_string ppf "exact"
  | Approximate { rung; tolerance; confidence } ->
      Format.fprintf ppf "approximate (rung %s, ±%g at %g%% confidence)" rung tolerance
        (100. *. confidence)

type 'a rung = { name : string; run : unit -> 'a graded }

let ladder ?(on_fallback = fun ~rung:_ _ -> ()) ~degradable rungs =
  if rungs = [] then invalid_arg "Degrade.ladder: no rungs";
  let rec go = function
    | [] -> assert false
    | [ last ] -> Obs.Trace.with_span ("degrade." ^ last.name) last.run
    | rung :: rest -> (
        match Obs.Trace.with_span ("degrade." ^ rung.name) rung.run with
        | result -> result
        | exception e when degradable e ->
            Obs.Metrics.incr c_degradations;
            Obs.Event.emit
              ~fields:
                [
                  ("rung", Obs.Json.String rung.name);
                  ( "to",
                    Obs.Json.String
                      (match rest with r :: _ -> r.name | [] -> "") );
                  ("error", Obs.Json.String (Printexc.to_string e));
                ]
              "degrade";
            Obs.Recorder.note "degraded_from" (Obs.Json.String rung.name);
            on_fallback ~rung:rung.name e;
            go rest)
  in
  go rungs
