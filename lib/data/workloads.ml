type t = {
  name : string;
  mpeg7 : Movie.t list;
  imdb : Movie.t list;
  dtd : Imprecise_xml.Dtd.t;
}

let movie rwo title year genres directors =
  { Movie.rwo; title; year; genres; directors }

(* The six movies the paper names (§V). Genre sets deliberately overlap
   across franchises: 'Thriller' bridges Jaws and Die Hard, 'Action'
   bridges Die Hard and Mission: Impossible, so the genre rule alone cannot
   separate the franchises cleanly. *)
let jaws1 = movie "jaws-1" "Jaws" 1975 [ "Horror"; "Thriller" ] [ "Steven Spielberg" ]

let jaws2 = movie "jaws-2" "Jaws 2" 1978 [ "Horror"; "Thriller" ] [ "Jeannot Szwarc" ]

let diehard2 =
  movie "diehard-2" "Die Hard 2" 1990 [ "Action"; "Thriller" ] [ "Renny Harlin" ]

let diehard3 =
  movie "diehard-3" "Die Hard: With a Vengeance" 1995 [ "Action"; "Thriller" ]
    [ "John McTiernan" ]

let mi1 =
  movie "mi-1" "Mission: Impossible" 1996 [ "Action"; "Adventure" ] [ "Brian De Palma" ]

let mi2 = movie "mi-2" "Mission: Impossible II" 2000 [ "Action"; "Adventure" ] [ "John Woo" ]

(* Non-co-referent IMDB confusers for the 6-vs-6 set-up. *)
let jaws_doc =
  movie "jaws-doc" "Jaws 2" 1984 [ "Documentary" ] [ "Maria Stellman" ]

let diehard4 =
  movie "diehard-4" "Live Free or Die Hard" 2007 [ "Action"; "Thriller" ] [ "Len Wiseman" ]

let mi_tv = movie "mi-tv" "Mission: Impossible" 1988 [ "Adventure" ] [ "Bruce Geller" ]

let confusing_mpeg7 = [ jaws1; jaws2; diehard2; diehard3; mi1; mi2 ]

(* The co-referent IMDB entries are the same records (same rwo); the
   renderer applies the IMDB conventions, so the XML is never deep-equal
   across sources. One co-referent movie per franchise, as in the paper. *)
let confusing_imdb = [ jaws1; jaws_doc; diehard3; diehard4; mi2; mi_tv ]

let confusing () =
  { name = "confusing-6v6"; mpeg7 = confusing_mpeg7; imdb = confusing_imdb; dtd = Movie.dtd }

(* ---- Figure 5 confusers -------------------------------------------------- *)

type franchise = {
  base : string;
  base_genres : string list;
  suffixes : string list;
  anchor_years : int list;  (** years of the real movies, for collisions *)
}

let franchises =
  [
    {
      base = "Jaws";
      base_genres = [ "Horror"; "Thriller" ];
      suffixes =
        [ " 2"; " 3-D"; ": The Revenge"; " Unleashed"; ": The True Story"; " Returns" ];
      anchor_years = [ 1975; 1978 ];
    };
    {
      base = "Die Hard";
      base_genres = [ "Action"; "Thriller" ];
      suffixes =
        [ " 2"; ": With a Vengeance"; " Trilogy"; ": The Video Game"; " IV"; ": Reloaded" ];
      anchor_years = [ 1990; 1995 ];
    };
    {
      base = "Mission: Impossible";
      base_genres = [ "Action"; "Adventure" ];
      suffixes = [ ""; " II"; " III"; ": The Series"; " Again"; ": Declassified" ];
      anchor_years = [ 1996; 2000 ];
    };
  ]

let directors_pool =
  [
    "Alan Smithee"; "Jane Doakes"; "Robert Vermeer"; "Lucia Andersen";
    "Pieter Boekman"; "Ingrid Halvorsen"; "Tomas Riva"; "Keiko Tanaka";
  ]

(* Confuser [i] (0-based) of the Figure 5 workload, assigned round-robin to
   franchises. Fully deterministic in [i]. *)
let figure5_confuser i =
  let f = List.nth franchises (i mod 3) in
  let gen = i / 3 in
  let suffix = List.nth f.suffixes (gen mod List.length f.suffixes) in
  let round = gen / List.length f.suffixes in
  let title =
    f.base ^ suffix ^ if round = 0 then "" else Printf.sprintf " Part %d" (round + 1)
  in
  let year =
    (* every 8th confuser collides with an anchor year *)
    if i mod 8 = 7 then List.nth f.anchor_years (gen mod 2)
    else 1960 + ((i * 7) mod 35) + if List.mem (1960 + ((i * 7) mod 35)) f.anchor_years then 1 else 0
  in
  let genres =
    (* every 5th confuser is a documentary (genre-prunable) *)
    if i mod 5 = 4 then [ "Documentary" ] else f.base_genres
  in
  let director = List.nth directors_pool (i mod List.length directors_pool) in
  movie (Printf.sprintf "confuser-%d" i) title year genres [ director ]

let figure5 ~n_imdb =
  let base = List.filteri (fun i _ -> i < n_imdb) confusing_imdb in
  let extra =
    if n_imdb <= 6 then []
    else List.init (n_imdb - 6) figure5_confuser
  in
  {
    name = Printf.sprintf "figure5-%d" n_imdb;
    mpeg7 = confusing_mpeg7;
    imdb = base @ extra;
    dtd = Movie.dtd;
  }

(* ---- typical (non-confusing) conditions ---------------------------------- *)

let typical_mpeg7 =
  [
    movie "t-monkeys" "Twelve Monkeys" 1995 [ "Sci-Fi"; "Thriller" ] [ "Terry Gilliam" ];
    movie "t-goldeneye" "GoldenEye" 1995 [ "Action"; "Adventure" ] [ "Martin Campbell" ];
    movie "t-sevn" "Se7en" 1995 [ "Crime"; "Mystery" ] [ "David Fincher" ];
    movie "t-casino" "Casino" 1995 [ "Crime"; "Drama" ] [ "Martin Scorsese" ];
    movie "t-jumanji" "Jumanji" 1995 [ "Adventure"; "Family" ] [ "Joe Johnston" ];
    movie "t-braveheart" "Braveheart" 1995 [ "Drama"; "History" ] [ "Mel Gibson" ];
  ]

(* The two co-referent IMDB entries: same rwo, same title and year, but
   genre sets and director-name conventions differ, so the pairs are never
   deep-equal — the Oracle stays undecided on exactly these two (the
   paper's "only on two occasions"), and the merged movies themselves are
   certain, giving the paper's 4 possible worlds. *)
let typical_coref_imdb =
  [
    { (List.nth typical_mpeg7 0) with Movie.genres = [ "Sci-Fi"; "Thriller"; "Mystery" ] };
    { (List.nth typical_mpeg7 1) with Movie.genres = [ "Action" ] };
  ]

let adjectives =
  [ "Silent"; "Broken"; "Crimson"; "Forgotten"; "Electric"; "Hollow"; "Amber" ]

let nouns =
  [ "Harvest"; "Orbit"; "Lanterns"; "Crossing"; "Reckoning"; "Meridian"; "Paradox" ]

let typical_filler i =
  let a = List.nth adjectives (i mod List.length adjectives) in
  let n = List.nth nouns ((i / List.length adjectives) mod List.length nouns) in
  let cycle = i / (List.length adjectives * List.length nouns) in
  let title =
    if cycle = 0 then Printf.sprintf "The %s %s" a n
    else Printf.sprintf "The %s %s %d" a n (cycle + 1)
  in
  movie
    (Printf.sprintf "filler-%d" i)
    title
    (1980 + ((i * 3) mod 25))
    [ List.nth [ "Drama"; "Comedy"; "Crime"; "Romance" ] (i mod 4) ]
    [ List.nth directors_pool ((i * 5) mod List.length directors_pool) ]

let typical ?(n_imdb = 60) () =
  let fillers = List.init (max 0 (n_imdb - 2)) typical_filler in
  {
    name = Printf.sprintf "typical-%d" n_imdb;
    mpeg7 = typical_mpeg7;
    imdb = typical_coref_imdb @ fillers;
    dtd = Movie.dtd;
  }

(* ---- renderers and ground truth ------------------------------------------ *)

let mpeg7_doc t = Movie.collection Movie.Mpeg7 t.mpeg7

let imdb_doc t = Movie.collection Movie.Imdb t.imdb

let coref_pairs t =
  List.filter_map
    (fun (m : Movie.t) ->
      Option.map
        (fun (i : Movie.t) -> (m, i))
        (List.find_opt (fun (i : Movie.t) -> i.Movie.rwo = m.Movie.rwo) t.imdb))
    t.mpeg7

module SS = Set.Make (String)

let titles_with_genre t genre =
  List.filter_map
    (fun (m : Movie.t) -> if List.mem genre m.Movie.genres then Some m.Movie.title else None)
    (t.mpeg7 @ t.imdb)
  |> SS.of_list |> SS.elements
