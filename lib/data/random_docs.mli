(** Deterministic random document generators for property-based tests.

    Pure functions of a {!Prng.t} state so qcheck shrinking stays
    reproducible. Sizes are kept small: these documents feed
    possible-world enumeration oracles. *)

module Tree = Imprecise_xml.Tree
module Pxml = Imprecise_pxml.Pxml

(** [xml rng ~depth] is a random plain XML element of bounded depth and
    fan-out, over a small tag/text alphabet (collisions are likely, which
    is what integration property tests need). *)
val xml : Prng.t -> depth:int -> Tree.t * Prng.t

(** [pxml rng ~depth] is a random {e valid} probabilistic document: layered
    structure, probabilities in (0,1] summing to 1 per probability node,
    world count kept small (≤ a few hundred). *)
val pxml : Prng.t -> depth:int -> Pxml.doc * Prng.t

(** [text rng] is a random short string over a tiny alphabet. *)
val text : Prng.t -> string * Prng.t
