module Tree = Imprecise_xml.Tree
module Pxml = Imprecise_pxml.Pxml

let tags = [ "a"; "b"; "c"; "item"; "name" ]

let words = [ "x"; "y"; "zz"; "hello"; "42" ]

let text rng = Prng.pick rng words

let rec xml rng ~depth =
  let tag, rng = Prng.pick rng tags in
  let n_attrs, rng = Prng.int rng 3 in
  let attrs, rng =
    List.fold_left
      (fun (acc, rng) i ->
        let v, rng = Prng.pick rng words in
        (acc @ [ (Printf.sprintf "k%d" i, v) ], rng))
      ([], rng)
      (List.init n_attrs (fun i -> i))
  in
  if depth <= 0 then
    let v, rng = Prng.pick rng words in
    (Tree.leaf ~attrs tag v, rng)
  else
    let n_children, rng = Prng.int rng 4 in
    let children, rng =
      List.fold_left
        (fun (acc, rng) _ ->
          let leafy, rng = Prng.int rng 3 in
          if leafy = 0 then
            let v, rng = Prng.pick rng words in
            (acc @ [ Tree.Text v ], rng)
          else
            let c, rng = xml rng ~depth:(depth - 1) in
            (acc @ [ c ], rng))
        ([], rng)
        (List.init n_children (fun i -> i))
    in
    (Tree.Element (tag, attrs, children), rng)

let probabilities rng n =
  let raw, rng =
    List.fold_left
      (fun (acc, rng) _ ->
        let f, rng = Prng.float rng in
        (acc @ [ f +. 0.05 ], rng))
      ([], rng)
      (List.init n (fun i -> i))
  in
  let total = List.fold_left ( +. ) 0. raw in
  (List.map (fun p -> p /. total) raw, rng)

let rec pxml_node rng ~depth : Pxml.node * Prng.t =
  let tag, rng = Prng.pick rng tags in
  if depth <= 0 then
    let v, rng = Prng.pick rng words in
    (Pxml.Elem (tag, [], [ Pxml.certain [ Pxml.Text v ] ]), rng)
  else
    let n_dists, rng = Prng.int rng 3 in
    let content, rng =
      List.fold_left
        (fun (acc, rng) _ ->
          let d, rng = pxml_dist rng ~depth:(depth - 1) in
          (acc @ [ d ], rng))
        ([], rng)
        (List.init n_dists (fun i -> i))
    in
    (Pxml.Elem (tag, [], content), rng)

and pxml_dist rng ~depth : Pxml.dist * Prng.t =
  let n_choices, rng = Prng.int rng 3 in
  let n_choices = n_choices + 1 in
  let probs, rng = probabilities rng n_choices in
  let choices, rng =
    List.fold_left
      (fun (acc, rng) prob ->
        let n_nodes, rng = Prng.int rng 3 in
        (* At most one text node per possibility, placed first: adjacent
           text nodes cannot be represented in serialised XML. *)
        let texty, rng = Prng.int rng 4 in
        let nodes, rng =
          if texty = 0 then
            let v, rng = Prng.pick rng words in
            ([ Pxml.Text v ], rng)
          else ([], rng)
        in
        let nodes, rng =
          List.fold_left
            (fun (acc, rng) _ ->
              let n, rng = pxml_node rng ~depth in
              (acc @ [ n ], rng))
            (nodes, rng)
            (List.init n_nodes (fun i -> i))
        in
        (acc @ [ Pxml.choice ~prob nodes ], rng))
      ([], rng) probs
  in
  (Pxml.dist choices, rng)

let pxml rng ~depth = pxml_dist rng ~depth
