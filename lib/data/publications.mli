(** A second integration domain: bibliographic records in two conventions
    (a DBLP-style source and an ACM-style source), demonstrating that the
    rule machinery is not movie-specific.

    The two sources render the same publications differently: author names
    are ["First Last"] in one and ["Last, First"] in the other, venue names
    are abbreviated differently ("Proc. ICDE" vs "ICDE Conference"), and
    page ranges may be missing. Titles identify papers up to punctuation
    and casing, so a title-similarity rule plus a year rule decides almost
    everything; near-miss confusers (extended versions of the same paper
    published in a different year, same-title short/demo papers) keep the
    Oracle honest. *)

type publication = {
  rwo : string;
  title : string;
  year : int;
  venue : string;
  authors : string list;  (** "First Last" form *)
  pages : (int * int) option;
}

type convention = Dblp | Acm

val render : convention -> publication -> Imprecise_xml.Tree.t

val collection : convention -> publication list -> Imprecise_xml.Tree.t

(** [sources ()] is the built-in pair of overlapping bibliographies:
    (DBLP-style list, ACM-style list). Three records co-refer; each source
    also has entries the other lacks, plus one demo-paper/full-paper
    confuser pair. *)
val sources : unit -> publication list * publication list

val coref_pairs : publication list -> publication list -> (publication * publication) list

(** [publication: title?, year?, venue?, pages?] *)
val dtd : Imprecise_xml.Dtd.t

(** The rule set for this domain: title similarity, year discrimination,
    author-name matching across conventions, venue reconciliation. *)
val rules : unit -> Imprecise_oracle.Oracle.t

(** Reconciliation knowledge for this domain (venue spellings, author
    conventions); pairs with {!rules} the way
    {!Imprecise_oracle.Oracle} pairs with a rule set. *)
val reconcile : string -> string -> string -> string option
