(* Re-export: the PRNG lives in its own library so that other subsystems
   (e.g. world sampling in pquery) can use it without depending on the
   workload generators. *)
include Imprecise_prng.Prng
