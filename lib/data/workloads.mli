(** The paper's experimental workloads (§V), rebuilt synthetically.

    Three scenarios:

    - {!confusing}: the Table I set-up — 2 'Mission: Impossible', 2 'Die
      Hard' and 2 'Jaws' movies per source, of which exactly one per
      franchise refers to the same real-world object in both sources. Genre
      sets are designed to overlap across franchises (everything
      action-adjacent shares a genre with something else), so the genre
      rule prunes mildly, the title rule strongly and the year rule almost
      completely — the ordering Table I reports.
    - {!figure5}: 6 MPEG-7 movies vs a growing number of IMDB sequels /
      TV shows / documentaries around the same franchises (the Figure 5
      x-axis). Confuser titles, years and genres are deterministic
      functions of their index; roughly every 8th confuser collides with a
      real movie's year (so the title+year curve creeps rather than stays
      flat) and every 5th is a documentary (prunable by genre).
    - {!typical}: the in-text 6-movies-of-1995 vs 60 experiment under
      non-confusing conditions: all titles distinct, two co-referent pairs
      whose values agree but never deep-equal (director-name conventions,
      one spelling variation), so with the full rule set the Oracle is
      undecided exactly twice and the result has 4 possible worlds. *)

type t = {
  name : string;
  mpeg7 : Movie.t list;
  imdb : Movie.t list;
  dtd : Imprecise_xml.Dtd.t;
}

val confusing : unit -> t

(** [figure5 ~n_imdb] — the first 6 IMDB movies are {!confusing}'s;
    further ones are generated confusers (round-robin over franchises). *)
val figure5 : n_imdb:int -> t

val typical : ?n_imdb:int -> unit -> t

(** Rendered source documents (schema-aligned [<movies>] collections). *)
val mpeg7_doc : t -> Imprecise_xml.Tree.t

val imdb_doc : t -> Imprecise_xml.Tree.t

(** Ground truth by construction: pairs (MPEG-7 movie, IMDB movie) that
    refer to the same rwo. *)
val coref_pairs : t -> (Movie.t * Movie.t) list

(** Titles of movies carrying [genre] in either source — ground truth for
    answer-quality experiments. *)
val titles_with_genre : t -> string -> string list
