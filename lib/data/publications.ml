module Tree = Imprecise_xml.Tree
module Oracle = Imprecise_oracle.Oracle
module Similarity = Imprecise_oracle.Similarity

type publication = {
  rwo : string;
  title : string;
  year : int;
  venue : string;
  authors : string list;
  pages : (int * int) option;
}

type convention = Dblp | Acm

let render convention p =
  let author a = match convention with Dblp -> a | Acm -> Movie.flip_name a in
  let venue v =
    match convention with Dblp -> "Proc. " ^ v | Acm -> v ^ " Conference"
  in
  Tree.element "publication"
    ([ Tree.leaf "title" p.title; Tree.leaf "year" (string_of_int p.year) ]
    @ [ Tree.leaf "venue" (venue p.venue) ]
    @ List.map (fun a -> Tree.leaf "author" (author a)) p.authors
    @
    match p.pages, convention with
    | Some (a, b), Dblp -> [ Tree.leaf "pages" (Printf.sprintf "%d-%d" a b) ]
    | Some _, Acm | None, _ -> [] (* the ACM-style source omits pages *))

let collection convention ps =
  Tree.element "publications" (List.map (render convention) ps)

let publication rwo title year venue authors pages =
  { rwo; title; year; venue; authors; pages }

(* Three shared records, two per-source extras, and a confuser pair: the
   same work as a demo paper and as a full paper two years apart. *)
let shared =
  [
    publication "pub-pxml" "A Probabilistic XML Approach to Data Integration" 2005 "ICDE"
      [ "Maurice van Keulen"; "Ander de Keijzer"; "Wouter Alink" ]
      (Some (459, 470));
    publication "pub-dataspaces" "Principles of Dataspace Systems" 2006 "PODS"
      [ "Alon Halevy"; "Michael Franklin"; "David Maier" ]
      (Some (1, 9));
    publication "pub-trio" "Trio: A System for Data Uncertainty and Lineage" 2006 "VLDB"
      [ "Jennifer Widom" ]
      None;
  ]

let dblp_only =
  [
    publication "pub-monet" "MonetDB/XQuery: A Fast XQuery Processor" 2006 "SIGMOD"
      [ "Peter Boncz"; "Torsten Grust" ]
      (Some (479, 490));
  ]

let acm_only =
  [
    publication "pub-mystiq" "MYSTIQ: A System for Finding More Answers by Using Probabilities"
      2005 "SIGMOD"
      [ "Nilesh Dalvi"; "Dan Suciu" ]
      None;
  ]

(* The confuser: a demo version and the full version of the same line of
   work — similar titles, different years, different rwos. *)
let demo_version =
  publication "pub-imprecise-demo" "IMPrECISE: Good-is-good-enough Data Integration" 2008
    "ICDE"
    [ "Ander de Keijzer"; "Maurice van Keulen" ]
    None

let full_version =
  publication "pub-imprecise-full" "Good-is-good-enough Data Integration" 2006 "IIDB"
    [ "Ander de Keijzer"; "Maurice van Keulen" ]
    None

let sources () =
  (shared @ dblp_only @ [ demo_version ], shared @ acm_only @ [ full_version ])

let coref_pairs a b =
  List.filter_map
    (fun (p : publication) ->
      Option.map (fun q -> (p, q)) (List.find_opt (fun q -> q.rwo = p.rwo) b))
    a

let dtd =
  match
    Imprecise_xml.Dtd.of_string "publication: title?, year?, venue?, pages?"
  with
  | Ok d -> d
  | Error _ -> assert false

let rules () =
  Oracle.make
    ~default:(Oracle.field_similarity_prob ~field:"title" ())
    [
      Oracle.deep_equal_rule;
      Oracle.similarity_rule ~tag:"publication" ~field:"title" ~threshold:0.5 ();
      Oracle.field_differs_rule ~tag:"publication" ~field:"year";
      Oracle.text_match_rule ~tag:"author" ~same_above:0.95 ~diff_below:0.3 ();
    ]

(* Venues are the same modulo the per-source decoration; authors modulo the
   name convention. *)
let reconcile tag l r =
  match tag with
  | "author" when Similarity.name_similarity l r >= 0.95 -> Some l
  | "venue" ->
      let strip v =
        let v = Tree.normalize_space v in
        let v =
          if String.length v > 6 && String.sub v 0 6 = "Proc. " then
            String.sub v 6 (String.length v - 6)
          else v
        in
        let suffix = " Conference" in
        if String.length v > String.length suffix
           && String.sub v (String.length v - String.length suffix) (String.length suffix)
              = suffix
        then String.sub v 0 (String.length v - String.length suffix)
        else v
      in
      if String.equal (strip l) (strip r) then Some (strip l) else None
  | _ -> None
