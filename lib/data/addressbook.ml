module Tree = Imprecise_xml.Tree

let person name tel =
  Tree.element "person" [ Tree.leaf "nm" name; Tree.leaf "tel" tel ]

let source_a = Tree.element "addressbook" [ person "John" "1111" ]

let source_b = Tree.element "addressbook" [ person "John" "2222" ]

let dtd =
  match Imprecise_xml.Dtd.of_string "person: nm?, tel?" with
  | Ok d -> d
  | Error _ -> assert false

let first_names =
  [ "John"; "Mary"; "Ahmed"; "Wei"; "Sofia"; "Pierre"; "Anika"; "Carlos"; "Yuki"; "Femke" ]

let last_names =
  [ "Smith"; "Jansen"; "Okafor"; "Garcia"; "Chen"; "Dubois"; "Bakker"; "Rossi"; "Kim"; "Visser" ]

let larger n seed =
  let rng = ref (Prng.make seed) in
  let draw f =
    let v, r = f !rng in
    rng := r;
    v
  in
  let name i =
    let fn = List.nth first_names (i mod List.length first_names) in
    let ln = List.nth last_names ((i / List.length first_names) mod List.length last_names) in
    let gen = i / (List.length first_names * List.length last_names) in
    if gen = 0 then fn ^ " " ^ ln else Printf.sprintf "%s %s %d" fn ln gen
  in
  let tel () = Printf.sprintf "%04d" (draw (fun r -> Prng.int r 10000)) in
  let people = List.init n (fun i -> (name i, tel ())) in
  let book_a = List.map (fun (nm, t) -> person nm t) people in
  let book_b =
    List.filteri (fun i _ -> i mod 3 <> 2) people
    |> List.map (fun (nm, t) ->
           (* every few shared persons changed their number *)
           let t = if draw (fun r -> Prng.int r 4) = 0 then tel () else t in
           person nm t)
  in
  let extra_b =
    List.init (max 1 (n / 4)) (fun i -> person (name (n + i)) (tel ()))
  in
  ( Tree.element "addressbook" book_a,
    Tree.element "addressbook" (book_b @ extra_b) )
