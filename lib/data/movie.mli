(** Movie metadata records and their renderings in the two sources'
    conventions.

    The paper integrates IMDB metadata with an MPEG-7 document; neither is
    redistributable, so this module synthesises records for the very movies
    the paper names plus deterministic confusers (see {!Workloads}).
    Schemas are pre-aligned, as §III assumes: both sources render to
    [<movie><title/><year/><genre/>*<director/>*</movie>]. What differs is
    the {e value conventions} — IMDB writes directors as ["McTiernan,
    John"], MPEG-7 as ["John McTiernan"] — so deep-equal never fires across
    sources, exactly as in the paper (§V). *)

type t = {
  rwo : string;  (** ground-truth real-world-object id (never rendered) *)
  title : string;
  year : int;
  genres : string list;
  directors : string list;  (** in "First Last" form *)
}

type convention = Imdb | Mpeg7

(** [render convention m] is the [<movie>] element. The [rwo] id is
    deliberately not rendered — integration must work from the data. *)
val render : convention -> t -> Imprecise_xml.Tree.t

(** [collection convention movies] wraps renderings in [<movies>]. *)
val collection : convention -> t list -> Imprecise_xml.Tree.t

(** [flip_name name] turns ["John McTiernan"] into ["McTiernan, John"]. *)
val flip_name : string -> string

(** The movie DTD: one [title] and one [year] per movie (used by
    integration to reconcile conflicting values locally). *)
val dtd : Imprecise_xml.Dtd.t
