(** Deterministic splittable PRNG — alias of {!Imprecise_prng.Prng}. *)

include module type of Imprecise_prng.Prng with type t = Imprecise_prng.Prng.t
