(** The paper's Figure 2 worked example: two address books, each with one
    person named John but different phone numbers, integrated under a DTD
    that allows at most one phone per person. The probabilistic result has
    exactly three possible worlds. *)

val source_a : Imprecise_xml.Tree.t

val source_b : Imprecise_xml.Tree.t

(** [person: nm?, tel?] *)
val dtd : Imprecise_xml.Dtd.t

(** [larger n seed] generates a pair of address books with [n] persons
    each, overlapping partially, for scale tests: some persons appear in
    both books (sometimes with a changed number), some in only one. *)
val larger : int -> int -> Imprecise_xml.Tree.t * Imprecise_xml.Tree.t
