module Tree = Imprecise_xml.Tree

type t = {
  rwo : string;
  title : string;
  year : int;
  genres : string list;
  directors : string list;
}

type convention = Imdb | Mpeg7

let flip_name name =
  match String.rindex_opt name ' ' with
  | None -> name
  | Some i ->
      let first = String.sub name 0 i in
      let last = String.sub name (i + 1) (String.length name - i - 1) in
      last ^ ", " ^ first

let render convention m =
  let director d =
    match convention with Imdb -> flip_name d | Mpeg7 -> d
  in
  Tree.element "movie"
    (Tree.leaf "title" m.title
     :: Tree.leaf "year" (string_of_int m.year)
     :: List.map (Tree.leaf "genre") m.genres
    @ List.map (fun d -> Tree.leaf "director" (director d)) m.directors)

let collection convention movies =
  Tree.element "movies" (List.map (render convention) movies)

let dtd =
  let open Imprecise_xml.Dtd in
  empty
  |> fun d ->
  declare d ~parent:"movie" ~child:"title" Optional |> fun d ->
  declare d ~parent:"movie" ~child:"year" Optional
